// Command pdwbench regenerates the paper's evaluation artifacts: the
// Table II comparison between DAWO and PathDriver-Wash, the Fig. 4
// average-waiting-time chart, and the Fig. 5 total-wash-time chart, over
// the eight benchmarks of Sec. IV.
//
// Usage:
//
//	pdwbench                      # Table II + Fig. 4 + Fig. 5
//	pdwbench -table2              # only Table II
//	pdwbench -csv                 # machine-readable CSV
//	pdwbench -paper               # measured-vs-paper improvement comparison
//	pdwbench -quick               # smaller solver budgets (fast smoke run)
//	pdwbench -stats               # per-benchmark structured solve traces
//	pdwbench -parallel 4          # worker-pool sweep with 4 workers
//	pdwbench -json out.json       # machine-readable sweep result (stable schema)
//	pdwbench -count 5 -json out.json # repeat the sweep 5x, recording wall-time samples
//	pdwbench -validate out.json   # validate a bench JSON file and exit
//	pdwbench -compare old.json new.json # statistical diff of two bench files
//	pdwbench -compare -md old.json new.json # ... as a markdown table
//	pdwbench -baseline old.json   # run the sweep, diff against old.json,
//	                              # exit non-zero on significant regression
//	pdwbench -corpus 50           # sweep a seeded 50-instance generated corpus
//	                              # instead of the Table II benchmarks
//	pdwbench -corpus 50 -corpus-seed 7 # ... from a different master seed
//	pdwbench -corpus 50 -shard 1/4 # run only the second of four shards
//	pdwbench -merge out.json s0.json s1.json # merge per-shard bench files
//	pdwbench -corpus 50 -oracle   # differential oracle over the corpus:
//	                              # cross-solver invariants, exit 1 on violation
//	pdwbench -trace out.trace.json # Chrome trace-event span dump (Perfetto)
//	pdwbench -events out.jsonl    # JSONL span event log
//	pdwbench -listen :8080        # live /metrics, /debug/vars, /debug/pprof
//
// Benchmarks that fail are reported on stderr and the command exits
// non-zero, but every artifact is still produced from the rows that
// completed — a sweep never silently omits Table II rows.
//
// The regression verdicts come from internal/report.Diff: Mann–Whitney
// significance on wall-time samples when both files carry them, fixed
// relative thresholds otherwise, and a hard refusal to compare -quick
// files against full runs. -baseline fails the run (exit 1) on any
// regression in n_wash / l_wash_mm / t_assay_s, on a wall-time
// regression beyond -wall-threshold, or on a benchmark that vanished
// relative to the baseline.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/corpus"
	"pathdriverwash/internal/harness"
	"pathdriverwash/internal/obs"
	"pathdriverwash/internal/pdw"
	"pathdriverwash/internal/report"
)

func main() {
	var (
		table2   = flag.Bool("table2", false, "print Table II only")
		fig4     = flag.Bool("fig4", false, "print Fig. 4 only")
		fig5     = flag.Bool("fig5", false, "print Fig. 5 only")
		csv      = flag.Bool("csv", false, "print CSV only")
		paper    = flag.Bool("paper", false, "print measured-vs-paper comparison only")
		quick    = flag.Bool("quick", false, "small solver budgets")
		stats    = flag.Bool("stats", false, "print per-benchmark solve traces")
		winTL    = flag.Duration("window-time", 10*time.Second, "time-window MILP limit per benchmark")
		pathTL   = flag.Duration("path-time", 3*time.Second, "wash-path ILP limit per path")
		budget   = flag.Duration("budget", 0, "total sweep deadline; expiry degrades runs to heuristic incumbents")
		par      = flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
		jsonOut  = flag.String("json", "", "write the machine-readable sweep result to this file")
		count    = flag.Int("count", 1, "run each benchmark this many times, recording per-iteration wall-time samples")
		validate = flag.String("validate", "", "validate a bench JSON file against the schema and exit")
		compare  = flag.Bool("compare", false, "compare two bench JSON files (old new) and exit")
		md       = flag.Bool("md", false, "render -compare / -baseline diffs as markdown")
		baseline = flag.String("baseline", "", "bench JSON baseline: run the sweep, diff against it, exit non-zero on regression")
		wallGate = flag.Float64("wall-threshold", 0.20, "relative wall-time regression that fails -baseline (0.20 = +20%)")
		corpusN  = flag.Int("corpus", 0, "sweep a seeded generated corpus of this many instances instead of the Table II benchmarks")
		corpSeed = flag.Uint64("corpus-seed", 1, "master seed of the -corpus sweep")
		shard    = flag.String("shard", "", "run only shard i of n (\"i/n\", 0-based) of the benchmark list")
		merge    = flag.Bool("merge", false, "merge per-shard bench files (out in1 in2 ...) and exit")
		oracle   = flag.Bool("oracle", false, "run the differential oracle over the benchmark list and exit")
		quality  = flag.Bool("quality", false, "with -compare: diff only the deterministic solution-quality metrics, not wall_s")
		traceOut = flag.String("trace", "", "write a Chrome trace-event span dump to this file")
		events   = flag.String("events", "", "stream span events as JSON lines to this file")
		listen   = flag.String("listen", "", "serve /metrics, /debug/vars and /debug/pprof on this address during the run")
	)
	flag.Parse()

	if *validate != "" {
		if _, err := readBenchFile(*validate); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: valid bench file (schema v%d)\n", *validate, report.BenchSchemaVersion)
		return
	}
	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two bench files: pdwbench -compare old.json new.json"))
		}
		oldFile, err := readBenchFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		newFile, err := readBenchFile(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		rep, err := report.DiffOpts(oldFile, newFile, report.DiffOptions{QualityOnly: *quality})
		if err != nil {
			fatal(err)
		}
		if *md {
			fmt.Print(rep.Markdown())
		} else {
			fmt.Print(rep.Table())
		}
		return
	}
	if *merge {
		if flag.NArg() < 3 {
			fatal(fmt.Errorf("-merge needs an output and at least two inputs: pdwbench -merge out.json shard0.json shard1.json ..."))
		}
		files := make([]*report.BenchFile, 0, flag.NArg()-1)
		for _, path := range flag.Args()[1:] {
			f, err := readBenchFile(path)
			if err != nil {
				fatal(err)
			}
			files = append(files, f)
		}
		merged, err := report.Merge(files)
		if err != nil {
			fatal(err)
		}
		if err := writeFileWith(flag.Arg(0), func(w io.Writer) error {
			return report.WriteBenchJSON(w, merged)
		}); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: merged %d shards, %d benchmarks, %d failures\n",
			flag.Arg(0), len(files), len(merged.Benchmarks), len(merged.Failures))
		return
	}

	// Observability wiring: any exporter flag enables the span/metric
	// layer for the whole run.
	var traceBuf *obs.TraceBuffer
	if *traceOut != "" {
		traceBuf = &obs.TraceBuffer{}
		obs.AddSink(traceBuf)
		obs.Enable()
	}
	var eventsFile *os.File
	var eventsJSONL *obs.JSONLWriter
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fatal(err)
		}
		eventsFile = f
		eventsJSONL = obs.NewJSONLWriter(f)
		obs.AddSink(eventsJSONL)
		obs.Enable()
	}
	if _, err := obs.ServeDebug("pdwbench", *listen); err != nil {
		fatal(err)
	}
	if *jsonOut != "" || *baseline != "" {
		obs.Enable() // the bench file embeds the metrics snapshot
	}

	opts := harness.Options{PDW: pdw.Options{
		PathTimeLimit: *pathTL, WindowTimeLimit: *winTL,
	}}
	if *quick {
		opts.PDW.PathTimeLimit = 500 * time.Millisecond
		opts.PDW.WindowTimeLimit = 2 * time.Second
		opts.BaseCompressLimit = time.Second
	}

	ctx := context.Background()
	if *budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *budget)
		defer cancel()
	}

	benches := benchmarks.All()
	if *corpusN > 0 {
		cs, err := corpus.GenerateSweep(ctx, corpus.SweepConfig{Seed: *corpSeed, N: *corpusN})
		if err != nil {
			fatal(err)
		}
		benches = cs
		// Corpus sweeps run the deterministic heuristic pipeline: the
		// generator's washability guarantee is proven with heuristic
		// paths and greedy windows (corpus.LevelWashable), and exact-ILP
		// behavior is the -oracle mode's job. This also keeps sharded
		// sweeps byte-reproducible: no ILP time limits to truncate
		// differently between runs.
		opts.PDW.HeuristicPaths = true
		opts.PDW.HeuristicWindows = true
	}
	if *shard != "" {
		idx, cnt, err := harness.ParseShard(*shard)
		if err != nil {
			fatal(err)
		}
		if benches, err = harness.Shard(benches, idx, cnt); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pdwbench: shard %s: %d benchmarks\n", *shard, len(benches))
	}
	if *oracle {
		oo := corpus.OracleOptions{}
		if *quick {
			oo.PathTimeLimit = 500 * time.Millisecond
			oo.MaxPathChecks = 3
		}
		verdicts, viols, err := corpus.CheckCorpus(ctx, benches, oo)
		if err != nil {
			fatal(err)
		}
		checks := 0
		for _, v := range verdicts {
			checks += v.PathChecks
		}
		fmt.Printf("oracle: %d instances, %d exact-vs-heuristic path checks, %d violations\n",
			len(verdicts), checks, len(viols))
		if len(viols) > 0 {
			for _, v := range viols {
				fmt.Fprintf(os.Stderr, "pdwbench: oracle violation: %s\n", v)
			}
			os.Exit(1)
		}
		return
	}
	start := time.Now()
	var (
		outs    []*harness.Outcome
		errs    []error
		samples []harness.BenchSamples
	)
	if *count > 1 {
		// Repeated sweeps feed the per-iteration wall_samples series;
		// a single-shot run leaves samples nil so the artifact stays
		// byte-identical to pre-radar files.
		outs, errs, samples = harness.RunSampledPartial(ctx, benches, opts, *par, *count)
	} else {
		outs, errs = harness.RunPartial(ctx, benches, opts, *par)
	}
	wall := time.Since(start)

	failed := 0
	for i, err := range errs {
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "pdwbench: %s failed: %v\n", benches[i].Name, err)
		}
	}
	rows := harness.Rows(outs)

	var bf *report.BenchFile
	if *jsonOut != "" || *baseline != "" {
		bf = harness.BuildBenchFile(benches, outs, errs, samples, *quick, *par, wall)
		if err := bf.Validate(); err != nil {
			fatal(fmt.Errorf("generated bench file fails its own schema: %w", err))
		}
	}
	if *jsonOut != "" {
		if err := writeFileWith(*jsonOut, func(w io.Writer) error {
			return report.WriteBenchJSON(w, bf)
		}); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pdwbench: sweep result written to %s\n", *jsonOut)
	}
	if traceBuf != nil {
		if err := writeFileWith(*traceOut, traceBuf.WriteChromeTrace); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pdwbench: %d spans written to %s (load in Perfetto / chrome://tracing)\n",
			traceBuf.Len(), *traceOut)
	}
	if eventsFile != nil {
		if err := eventsJSONL.Err(); err != nil {
			fatal(fmt.Errorf("events log: %w", err))
		}
		if err := eventsFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pdwbench: span events written to %s\n", *events)
	}

	all := !*table2 && !*fig4 && !*fig5 && !*csv && !*paper
	if len(rows) > 0 {
		if all || *table2 {
			fmt.Println(report.TableII(rows))
		}
		if all || *fig4 {
			fmt.Println(report.Fig4(rows))
		}
		if all || *fig5 {
			fmt.Println(report.Fig5(rows))
		}
		if *csv {
			fmt.Print(report.CSV(rows))
		}
		if all || *paper {
			fmt.Println(report.ComparisonTable(harness.PaperComparisons(outs)))
		}
	}
	if all {
		for _, o := range outs {
			if o == nil {
				continue
			}
			fmt.Printf("%-14s DAWO %6.2fs  PDW %6.2fs (windows optimal: %v, B&B nodes %d, simplex pivots %d)\n",
				o.Benchmark.Name, o.DAWOTime.Seconds(), o.PDWTime.Seconds(), o.PDW.WindowsOptimal,
				o.PDW.Stats.Nodes(), o.PDW.Stats.SimplexIters())
		}
		fmt.Printf("total runtime: %.1fs\n", wall.Seconds())
	}
	if *stats {
		for _, o := range outs {
			if o == nil {
				continue
			}
			fmt.Printf("\n%s PDW solve trace:\n%s\n", o.Benchmark.Name, o.PDW.Stats.Summary())
		}
	}
	if *baseline != "" {
		base, err := readBenchFile(*baseline)
		if err != nil {
			fatal(fmt.Errorf("baseline: %w", err))
		}
		rep, err := report.Diff(base, bf)
		if err != nil {
			fatal(err)
		}
		if *md {
			fmt.Print(rep.Markdown())
		} else {
			fmt.Print(rep.Table())
		}
		if viol := rep.Gate(*wallGate); len(viol) > 0 {
			fmt.Fprintf(os.Stderr, "pdwbench: %d regression(s) against baseline %s:\n", len(viol), *baseline)
			for _, v := range viol {
				if v.Verdict == report.VerdictMissing {
					fmt.Fprintf(os.Stderr, "  %s: missing from this run\n", v.Benchmark)
					continue
				}
				fmt.Fprintf(os.Stderr, "  %s/%s/%s: %g -> %g\n", v.Benchmark, v.Method, v.Metric, v.Old, v.New)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pdwbench: no regressions against baseline %s\n", *baseline)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "pdwbench: %d of %d benchmarks failed\n", failed, len(benches))
		os.Exit(1)
	}
}

// readBenchFile opens, parses, and schema-validates one bench file.
func readBenchFile(path string) (*report.BenchFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return report.ReadBenchJSON(f)
}

// writeFileWith creates path, streams through write, and closes it,
// reporting the first error.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdwbench:", err)
	os.Exit(1)
}
