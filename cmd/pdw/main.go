// Command pdw runs PathDriver-Wash (or the DAWO baseline) on one of the
// paper's benchmarks and prints the optimized execution procedure.
//
// Usage:
//
//	pdw -bench PCR                 # run PDW on the PCR benchmark
//	pdw -bench IVD -method dawo    # run the baseline
//	pdw -bench PCR -gantt -paths   # also print the Gantt chart and paths
//	pdw -bench PCR -stats          # print the structured solve trace
//	pdw -bench PCR -budget 2s      # bound the whole run by a deadline
//	pdw -file assay.json           # run a custom JSON assay
//	pdw -bench PCR -listen :8080   # live /metrics, /debug/vars, /debug/pprof
//	pdw -bench PCR -export         # dump a benchmark as JSON
//	pdw -list                      # list available benchmarks
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/assayio"
	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/dawo"
	"pathdriverwash/internal/demandwash"
	"pathdriverwash/internal/obs"
	"pathdriverwash/internal/pdw"
	"pathdriverwash/internal/schedule"
	"pathdriverwash/internal/scheduleio"
	"pathdriverwash/internal/solve"
	"pathdriverwash/internal/synth"
)

func main() {
	var (
		benchName = flag.String("bench", "PCR", "benchmark name (see -list)")
		file      = flag.String("file", "", "JSON assay file (overrides -bench)")
		export    = flag.Bool("export", false, "print the selected benchmark as JSON and exit")
		method    = flag.String("method", "pdw", "optimizer: pdw or dawo")
		gantt     = flag.Bool("gantt", false, "print the schedule Gantt chart")
		paths     = flag.Bool("paths", false, "print every flow path (Table I style)")
		chipArt   = flag.Bool("chip", false, "print the chip layout")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		pathTL    = flag.Duration("path-time", 3*time.Second, "wash-path ILP time limit")
		winTL     = flag.Duration("window-time", 10*time.Second, "time-window MILP time limit")
		budget    = flag.Duration("budget", 0, "total wall-clock budget; on expiry the run degrades to heuristic incumbents")
		stats     = flag.Bool("stats", false, "print the structured solve trace")
		heuristic = flag.Bool("heuristic", false, "use BFS paths and greedy windows (no ILP)")
		outJSON   = flag.String("out", "", "write the optimized schedule as JSON to this file")
		listen    = flag.String("listen", "", "serve /metrics, /debug/vars and /debug/pprof on this address during the run")
	)
	flag.Parse()

	if _, err := obs.ServeDebug("pdw", *listen); err != nil {
		fatal(err)
	}

	if *list {
		for _, b := range benchmarks.All() {
			ops, _, tasks := b.Assay.Stats()
			devs := 0
			for _, d := range b.Config.Devices {
				devs += d.Count
			}
			fmt.Printf("%-14s |O|=%d |D|=%d |E|=%d\n", b.Name, ops, devs, tasks)
		}
		return
	}

	var a *assay.Assay
	var cfg synth.Config
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		a, cfg, err = assayio.Decode(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		b, err := benchmarks.ByName(*benchName)
		if err != nil {
			fatal(err)
		}
		a, cfg = b.Assay, b.Config
	}
	if *export {
		if err := assayio.Encode(os.Stdout, a, cfg); err != nil {
			fatal(err)
		}
		return
	}

	syn, err := synth.Synthesize(a, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("assay %s: chip %dx%d, %d devices, wash-free makespan %ds\n",
		a.Name, syn.Chip.W, syn.Chip.H, len(syn.Chip.Devices()), syn.Schedule.Makespan())
	if *chipArt {
		fmt.Println(syn.Chip.Render())
	}

	ref, err := pdw.CompressBase(syn.Schedule, 5*time.Second)
	if err != nil {
		fatal(err)
	}

	ctx := context.Background()
	// With -listen, the run is visible on /debug/solves while it lasts:
	// attach a live progress view and register it under the assay name.
	prog := solve.NewProgress()
	ctx = solve.WithProgress(ctx, prog)
	unregister := obs.RegisterSolve("", "cli", *method+":"+a.Name, prog.Snapshot)
	defer unregister()
	var out *schedule.Schedule
	switch *method {
	case "pdw":
		res, err := pdw.OptimizeContext(ctx, syn.Schedule, pdw.Options{
			Budget:         solve.Budget{Total: *budget, PerPath: *pathTL, Window: *winTL},
			HeuristicPaths: *heuristic, HeuristicWindows: *heuristic,
		})
		if err != nil {
			fatal(err)
		}
		out = res.Schedule
		fmt.Printf("PDW: %d washes (%d integrated removals), windows optimal: %v, objective %.2f\n",
			len(res.Washes), res.IntegratedRemovals, res.WindowsOptimal, res.Objective)
		fmt.Printf("necessity analysis: %v\n", res.Skips)
		if *stats {
			fmt.Println("solve trace:")
			fmt.Println(res.Stats.Summary())
		}
	case "dawo":
		res, err := dawo.OptimizeContext(ctx, syn.Schedule, dawo.Options{
			Budget: solve.Budget{Total: *budget},
		})
		if err != nil {
			fatal(err)
		}
		out = res.Schedule
		fmt.Printf("DAWO: %d washes in %d rounds\n", len(res.Washes), res.Rounds)
		if *stats {
			fmt.Println("solve trace:")
			fmt.Println(res.Stats.Summary())
		}
	case "demand":
		res, err := demandwash.Optimize(syn.Schedule, demandwash.Options{})
		if err != nil {
			fatal(err)
		}
		out = res.Schedule
		fmt.Printf("demand-driven: %d washes in %d rounds\n", len(res.Washes), res.Rounds)
	default:
		fatal(fmt.Errorf("unknown method %q (want pdw, dawo or demand)", *method))
	}

	m := out.ComputeMetrics(ref)
	fmt.Printf("N_wash=%d  L_wash=%.0f mm  T_delay=%ds  T_assay=%ds  avg-wait=%.2fs  wash-time=%ds\n",
		m.NWash, m.LWashMM, m.TDelay, m.TAssay, m.AvgWaitSeconds, m.TotalWashSeconds)

	if *paths {
		fmt.Println("\nflow paths:")
		for _, t := range out.SortedByStart() {
			if !t.Kind.Fluidic() || !t.Active() {
				continue
			}
			fmt.Printf("  %-14s [%2d,%2d) %s\n", t.ID, t.Start, t.End, t.Path.Describe(out.Chip))
		}
	}
	if *gantt {
		fmt.Println()
		fmt.Println(out.Gantt())
	}
	if *outJSON != "" {
		f, err := os.Create(*outJSON)
		if err != nil {
			fatal(err)
		}
		if err := scheduleio.Encode(f, out); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("schedule written to %s\n", *outJSON)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdw:", err)
	os.Exit(1)
}
