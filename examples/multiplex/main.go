// Multiplexing: three independent assay lanes merged onto one chip (the
// structure of the paper's Kinase act-2 benchmark, built through the
// public API). The lanes share a buffer reagent — harmless residue the
// Type-2 analysis never washes — while their distinct samples force
// washes whenever lanes share channels.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pathdriverwash/pkg/pathdriver"
)

func lane(name string, sample pathdriver.FluidType) *pathdriver.Assay {
	a := pathdriver.NewAssay(name)
	a.MustAddOp(&pathdriver.Operation{
		ID: "mix", Kind: pathdriver.Mix, Duration: 2,
		Output:   pathdriver.FluidType(name + "-complex"),
		Reagents: []pathdriver.FluidType{sample, "assay-buffer"},
	})
	a.MustAddOp(&pathdriver.Operation{
		ID: "incubate", Kind: pathdriver.Heat, Duration: 4,
		Output: pathdriver.FluidType(name + "-complex"),
	})
	a.MustAddOp(&pathdriver.Operation{
		ID: "read", Kind: pathdriver.Detect, Duration: 3,
		Output: pathdriver.FluidType(name + "-complex"),
	})
	a.MustAddEdge("mix", "incubate")
	a.MustAddEdge("incubate", "read")
	return a
}

func main() {
	panel, err := pathdriver.MergeAssays("panel",
		lane("lane1", "serum-1"),
		lane("lane2", "serum-2"),
		lane("lane3", "serum-3"),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multiplexed panel: %d operations, %d dependencies\n",
		len(panel.Ops()), len(panel.Edges()))

	ctx := context.Background()
	syn, err := pathdriver.Synthesize(ctx, panel, pathdriver.SynthConfig{
		Devices: []pathdriver.DeviceSpec{
			{Kind: "mixer", Count: 2},
			{Kind: "heater", Count: 2},
			{Kind: "detector", Count: 2},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	ref, err := pathdriver.CompressBase(ctx, syn.Schedule, 3*time.Second)
	if err != nil {
		log.Fatal(err)
	}

	res, err := pathdriver.OptimizeWash(ctx, syn.Schedule, pathdriver.Options{})
	if err != nil {
		log.Fatal(err)
	}
	m := res.Schedule.ComputeMetrics(ref)
	fmt.Printf("PDW: %d washes, %d integrated removals, %.0f mm wash path, "+
		"%d s assay (%d s wash-free)\n",
		m.NWash, m.IntegratedRemovals, m.LWashMM, m.TAssay, ref.Makespan())

	// The control layer shows what the lanes cost in valve actuations.
	layer := pathdriver.SynthesizeControl(syn.Chip)
	plan, err := pathdriver.PlanControl(layer, res.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("control layer: %d valves, %d pins after sharing, %d switch operations\n",
		len(layer.Valves), plan.Pins, plan.Switches)
}
