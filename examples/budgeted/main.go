// Budgeted: run PathDriver-Wash under a wall-clock budget and inspect
// the structured solve telemetry. The whole pipeline — wash-path ILPs,
// the time-window MILP, verification — shares one deadline; when it
// expires mid-search, every remaining phase degrades to its best
// feasible incumbent and the result is still a valid, contamination-free
// schedule (never an error). The same degradation happens if the
// context is canceled externally (^C, HTTP request gone, ...).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pathdriverwash/pkg/pathdriver"
)

func main() {
	// The PCR benchmark: large enough that the exact time-window MILP
	// wants several seconds, so a one-second budget visibly bites.
	b, err := pathdriver.BenchmarkByName("PCR")
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	syn, err := pathdriver.Synthesize(ctx, b.Assay, b.Config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: chip %dx%d, wash-free makespan %ds\n",
		b.Name, syn.Chip.W, syn.Chip.H, syn.Schedule.Makespan())

	res, err := pathdriver.OptimizeWash(ctx, syn.Schedule, pathdriver.Options{
		Budget: pathdriver.Budget{
			Total:   time.Second,            // whole-pipeline deadline
			PerPath: 500 * time.Millisecond, // each wash-path ILP
			Window:  10 * time.Second,       // time-window MILP (clipped by Total)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := pathdriver.VerifyClean(res.Schedule); err != nil {
		log.Fatal(err) // never happens: degraded results are verified too
	}

	fmt.Printf("PDW under 1s budget: %d washes, makespan %ds\n",
		len(res.Washes), res.Schedule.Makespan())
	if res.Stats.Canceled {
		fmt.Println("budget expired: later phases returned their incumbents")
	}
	fmt.Println("solve trace:")
	fmt.Println(res.Stats.Summary())
}
