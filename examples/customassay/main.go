// Custom assay: an immunoassay-style protocol built through the public
// API with a custom device library, comparing PathDriver-Wash against
// the DAWO baseline on the same synthesized chip — a miniature version
// of the paper's Table II experiment.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pathdriverwash/pkg/pathdriver"
)

func main() {
	// A chemiluminescence immunoassay sketch (the paper's motivating
	// application domain): capture mix, incubation, wash-sensitive
	// luminescence detections with different agents, final readout.
	a := pathdriver.NewAssay("immuno")
	a.MustAddOp(&pathdriver.Operation{ID: "capture", Kind: pathdriver.Mix, Duration: 3,
		Output: "complex", Reagents: []pathdriver.FluidType{"serum", "antibody-beads"}})
	a.MustAddOp(&pathdriver.Operation{ID: "incubate", Kind: pathdriver.Heat, Duration: 5,
		Output: "complex"})
	a.MustAddOp(&pathdriver.Operation{ID: "label", Kind: pathdriver.Mix, Duration: 2,
		Output: "labelled", Reagents: []pathdriver.FluidType{"lumi-agent-1"}})
	a.MustAddOp(&pathdriver.Operation{ID: "read1", Kind: pathdriver.Detect, Duration: 3,
		Output: "labelled"})
	a.MustAddOp(&pathdriver.Operation{ID: "relabel", Kind: pathdriver.Mix, Duration: 2,
		Output: "relabelled", Reagents: []pathdriver.FluidType{"lumi-agent-2"}})
	a.MustAddOp(&pathdriver.Operation{ID: "read2", Kind: pathdriver.Detect, Duration: 3,
		Output: "relabelled"})
	a.MustAddEdge("capture", "incubate")
	a.MustAddEdge("incubate", "label")
	a.MustAddEdge("label", "read1")
	a.MustAddEdge("read1", "relabel")
	a.MustAddEdge("relabel", "read2")

	ctx := context.Background()
	syn, err := pathdriver.Synthesize(ctx, a, pathdriver.SynthConfig{
		Devices: []pathdriver.DeviceSpec{
			{Kind: "mixer", Count: 2},
			{Kind: "heater", Count: 1},
			{Kind: "detector", Count: 1}, // one detector: reads share it
		},
		FlowPorts: 3, WastePorts: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	ref, err := pathdriver.CompressBase(ctx, syn.Schedule, 3*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("immunoassay on a %dx%d chip, wash-free makespan %ds\n\n",
		syn.Chip.W, syn.Chip.H, ref.Makespan())

	dawoRes, err := pathdriver.Baseline(ctx, syn.Schedule, pathdriver.Options{})
	if err != nil {
		log.Fatal(err)
	}
	pdwRes, err := pathdriver.OptimizeWash(ctx, syn.Schedule, pathdriver.Options{})
	if err != nil {
		log.Fatal(err)
	}

	dm := dawoRes.Schedule.ComputeMetrics(ref)
	pm := pdwRes.Schedule.ComputeMetrics(ref)
	fmt.Printf("%-8s %8s %12s %10s %10s %10s\n", "method", "N_wash", "L_wash(mm)", "T_delay", "T_assay", "wash-time")
	fmt.Printf("%-8s %8d %12.0f %9ds %9ds %9ds\n", "DAWO",
		dm.NWash, dm.LWashMM, dm.TDelay, dm.TAssay, dm.TotalWashSeconds)
	fmt.Printf("%-8s %8d %12.0f %9ds %9ds %9ds\n", "PDW",
		pm.NWash, pm.LWashMM, pm.TDelay, pm.TAssay, pm.TotalWashSeconds)

	fmt.Printf("\nPDW integrated %d excess removals into washes (ψ=1)\n", pm.IntegratedRemovals)
	fmt.Println("\nPDW schedule:")
	fmt.Println(pdwRes.Schedule.Gantt())
}
