// Wash-path demo: the ILP wash-path construction of Eqs. (12)-(15)
// against the BFS heuristic the DAWO baseline uses, on a hand-built
// chip. A contaminated channel segment sits near the chip centre; the
// demo shows the port selection and path each method produces and the
// resulting path lengths (the L_wash contribution of Eq. 25).
package main

import (
	"fmt"
	"log"
	"time"

	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/washpath"
	"pathdriverwash/pkg/pathdriver"
)

func main() {
	chip := pathdriver.NewChip("demo", 11, 9)
	mustPort := func(id string, kind int, at geom.Point) {
		k := pathdriver.FlowPort
		if kind == 1 {
			k = pathdriver.WastePort
		}
		if _, err := chip.AddPort(id, k, at); err != nil {
			log.Fatal(err)
		}
	}
	mustPort("in1", 0, geom.Pt(1, 0))
	mustPort("in2", 0, geom.Pt(0, 7))
	mustPort("out1", 1, geom.Pt(10, 1))
	mustPort("out2", 1, geom.Pt(5, 8))
	if _, err := chip.AddDevice("mixer", "mixer", geom.Rc(5, 3, 7, 5)); err != nil {
		log.Fatal(err)
	}
	for y := 1; y < 8; y++ {
		for x := 1; x < 10; x++ {
			if chip.DeviceAt(geom.Pt(x, y)) == nil {
				if err := chip.AddChannel(geom.Pt(x, y)); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	if err := chip.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("chip:")
	fmt.Println(chip.Render())

	// A contaminated segment hugging the mixer's south-west corner.
	targets := []geom.Point{geom.Pt(3, 5), geom.Pt(4, 5), geom.Pt(4, 6)}
	fmt.Printf("wash targets: %v (device must not be flushed)\n\n", targets)

	heur, err := washpath.Build(chip, washpath.Request{Targets: targets}, washpath.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BFS heuristic (DAWO style): %d cells, %s -> %s\n  %s\n\n",
		heur.Path.Len(), heur.FlowPort.ID, heur.WastePort.ID, heur.Path)

	exact, err := washpath.Build(chip, washpath.Request{Targets: targets},
		washpath.Options{Exact: true, TimeLimit: 20 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ILP (PDW, Eqs. 12-15): %d cells, %s -> %s, proven optimal: %v\n  %s\n\n",
		exact.Path.Len(), exact.FlowPort.ID, exact.WastePort.ID, exact.Optimal, exact.Path)

	saved := heur.Path.Len() - exact.Path.Len()
	fmt.Printf("ILP saves %d cells (%.0f mm of wash path, %.1f s of flush time)\n",
		saved, chip.CellLengthOf(saved), chip.CellLengthOf(saved)/chip.FlowVelocityMMs)
}
