// Motivating example: the paper's Figs. 1(c)/2 running assay on its
// hand-built five-device chip. The program prints the chip layout, the
// complete flow paths of the wash-free scheduling (the paper's Table I),
// the contamination analysis with the Type-1/2/3 skip statistics of
// Sec. II-A, and the optimized schedule with wash operations (Fig. 3).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pathdriverwash/internal/contam"
	"pathdriverwash/pkg/pathdriver"
)

func main() {
	a, chip, err := pathdriver.MotivatingExample()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	syn, err := pathdriver.SynthesizeOnChip(ctx, a, chip)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("chip layout (Fig. 2(a) style):")
	fmt.Println(chip.Render())

	fmt.Printf("wash-free scheduling (Fig. 2(b) style), makespan %ds\n", syn.Schedule.Makespan())
	fmt.Println("complete flow paths (Table I style):")
	for _, t := range syn.Schedule.SortedByStart() {
		if !t.Kind.Fluidic() {
			continue
		}
		tag := map[bool]string{true: "#", false: "*"}[t.Kind.String() == "transport"]
		if t.Kind.String() == "waste" {
			tag = "$"
		}
		fmt.Printf("  %s %-14s [%2d,%2d) %s\n", tag, t.ID, t.Start, t.End, t.Path.Describe(chip))
	}

	// Necessity analysis of Sec. II-A: how many contaminated cells can
	// skip washing and why.
	an, err := contam.Analyze(syn.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncontamination events: %d, wash requirements: %d\n", len(an.Events), len(an.Requirements))
	for reason, n := range an.Skips {
		fmt.Printf("  %-18s %d events\n", reason, n)
	}

	// PDW: optimized wash paths and time windows (Fig. 3 style).
	res, err := pathdriver.OptimizeWash(ctx, syn.Schedule, pathdriver.Options{
		Budget: pathdriver.Budget{Window: 10 * time.Second},
	})
	if err != nil {
		log.Fatal(err)
	}
	ref, err := pathdriver.CompressBase(ctx, syn.Schedule, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	m := res.Schedule.ComputeMetrics(ref)
	fmt.Printf("\nPDW: %d washes, %d integrated removals, T_assay %ds (wash-free %ds, delay %ds)\n",
		m.NWash, m.IntegratedRemovals, m.TAssay, ref.Makespan(), m.TDelay)
	fmt.Println("wash operations:")
	for _, w := range res.Washes {
		fmt.Printf("  w %-4s %s\n", w.ID, w.Path.Describe(chip))
	}
	fmt.Println("\noptimized schedule (Fig. 3 style):")
	fmt.Println(res.Schedule.Gantt())
}
