// Quickstart: build a small three-operation assay, synthesize a chip
// and a wash-free scheduling for it, then let PathDriver-Wash insert
// optimized wash operations and print the result.
package main

import (
	"context"
	"fmt"
	"log"

	"pathdriverwash/pkg/pathdriver"
)

func main() {
	// A serial protocol: mix two reagents, mix the product with a third
	// reagent on a second mixer, then process the result once more on
	// the first mixer — which by then holds foreign residue, so washing
	// is unavoidable.
	a := pathdriver.NewAssay("quickstart")
	a.MustAddOp(&pathdriver.Operation{
		ID: "o1", Kind: pathdriver.Mix, Duration: 2, Output: "f1",
		Reagents: []pathdriver.FluidType{"sample", "buffer"},
	})
	a.MustAddOp(&pathdriver.Operation{
		ID: "o2", Kind: pathdriver.Mix, Duration: 2, Output: "f2",
		Reagents: []pathdriver.FluidType{"reagent-b"},
	})
	a.MustAddOp(&pathdriver.Operation{
		ID: "o3", Kind: pathdriver.Mix, Duration: 2, Output: "f3",
		Reagents: []pathdriver.FluidType{"reagent-c"},
	})
	a.MustAddEdge("o1", "o2")
	a.MustAddEdge("o2", "o3")

	// Synthesize the substrate: chip layout, binding, routing, and a
	// conflict-free wash-free schedule (the PathDriver+ stand-in).
	ctx := context.Background()
	syn, err := pathdriver.Synthesize(ctx, a, pathdriver.SynthConfig{
		Devices: []pathdriver.DeviceSpec{{Kind: "mixer", Count: 2}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip %dx%d, wash-free makespan %ds\n",
		syn.Chip.W, syn.Chip.H, syn.Schedule.Makespan())
	fmt.Println(syn.Chip.Render())

	// Optimize washes with PDW.
	res, err := pathdriver.OptimizeWash(ctx, syn.Schedule, pathdriver.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := pathdriver.VerifyClean(res.Schedule); err != nil {
		log.Fatal(err) // never happens: Optimize verifies internally
	}

	fmt.Printf("PDW inserted %d wash operations (%d removals integrated)\n",
		len(res.Washes), res.IntegratedRemovals)
	for _, w := range res.Washes {
		fmt.Printf("  %s: %s\n", w.ID, w.Path.Describe(syn.Chip))
	}
	fmt.Printf("optimized makespan %ds (objective %.2f)\n\n",
		res.Schedule.Makespan(), res.Objective)
	fmt.Println(res.Schedule.Gantt())
}
