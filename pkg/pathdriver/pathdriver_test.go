package pathdriver

import (
	"context"
	"testing"
	"time"
)

func buildAssay(t *testing.T) *Assay {
	t.Helper()
	a := NewAssay("api")
	a.MustAddOp(&Operation{ID: "o1", Kind: Mix, Duration: 2, Output: "f1",
		Reagents: []FluidType{"r1", "r2"}})
	a.MustAddOp(&Operation{ID: "o2", Kind: Mix, Duration: 2, Output: "f2",
		Reagents: []FluidType{"r3"}})
	a.MustAddEdge("o1", "o2")
	return a
}

func TestPublicAPIEndToEnd(t *testing.T) {
	a := buildAssay(t)
	syn, err := Synthesize(context.Background(), a, SynthConfig{
		Devices: []DeviceSpec{{Kind: "mixer", Count: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := OptimizeWash(context.Background(), syn.Schedule, Options{
		Budget: Budget{PerPath: time.Second, Window: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyClean(res.Schedule); err != nil {
		t.Fatal(err)
	}
	base, err := Baseline(context.Background(), syn.Schedule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyClean(base.Schedule); err != nil {
		t.Fatal(err)
	}
	ref, err := CompressBase(context.Background(), syn.Schedule, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Makespan() > syn.Schedule.Makespan() {
		t.Error("compressed base slower than greedy base")
	}
}

func TestBenchmarksExposed(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 8 {
		t.Fatalf("benchmarks = %d want 8", len(bs))
	}
	b, err := BenchmarkByName("PCR")
	if err != nil || b.Name != "PCR" {
		t.Fatalf("BenchmarkByName: %v %v", b, err)
	}
}

func TestMotivatingExampleExposed(t *testing.T) {
	a, chip, err := MotivatingExample()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Ops()) != 7 || len(chip.Devices()) != 5 {
		t.Fatal("motivating example shape wrong")
	}
	syn, err := SynthesizeOnChip(context.Background(), a, chip)
	if err != nil {
		t.Fatal(err)
	}
	if syn.Schedule.Makespan() == 0 {
		t.Fatal("empty schedule")
	}
}

func TestCustomChipThroughAPI(t *testing.T) {
	c := NewChip("custom", 10, 8)
	if _, err := c.AddPort("in1", FlowPort, Pt(0, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddPort("out1", WastePort, Pt(9, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddDevice("mixer1", "mixer", Rc(4, 2, 6, 4)); err != nil {
		t.Fatal(err)
	}
	for x := 1; x < 9; x++ {
		for y := 1; y < 7; y++ {
			if c.DeviceAt(Pt(x, y)) == nil {
				if err := c.AddChannel(Pt(x, y)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	a := NewAssay("one")
	a.MustAddOp(&Operation{ID: "o1", Kind: Mix, Duration: 2, Output: "f1",
		Reagents: []FluidType{"r1"}})
	syn, err := SynthesizeOnChip(context.Background(), a, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := syn.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestControlLayerThroughAPI(t *testing.T) {
	a := buildAssay(t)
	syn, err := Synthesize(context.Background(), a, SynthConfig{})
	if err != nil {
		t.Fatal(err)
	}
	layer := SynthesizeControl(syn.Chip)
	if len(layer.Valves) == 0 {
		t.Fatal("no valves")
	}
	plan, err := PlanControl(layer, syn.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Pins <= 0 {
		t.Fatalf("pins = %d", plan.Pins)
	}
}
