package pathdriver

import (
	"context"
	"errors"
	"testing"
	"time"
)

func motivatingRequest(t *testing.T, method Method, opts Options) Request {
	t.Helper()
	a, _, err := MotivatingExample()
	if err != nil {
		t.Fatal(err)
	}
	return Request{
		Assay:   NewAssayDocument(a, SynthConfig{}),
		Method:  method,
		Options: opts,
	}
}

func TestSolvePDW(t *testing.T) {
	resp, err := Solve(context.Background(), motivatingRequest(t, "", Options{Heuristic: true}))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Method != MethodPDW {
		t.Fatalf("default method = %q, want pdw", resp.Method)
	}
	if err := VerifyClean(resp.Schedule); err != nil {
		t.Fatal(err)
	}
	if resp.Washes == 0 || resp.Metrics.NWash != resp.Washes {
		t.Fatalf("washes=%d metrics.NWash=%d", resp.Washes, resp.Metrics.NWash)
	}
	if resp.Stats == nil || len(resp.Stats.Phases) == 0 {
		t.Fatal("no solve telemetry on response")
	}
	if resp.Reference == nil || resp.Reference.Makespan() == 0 {
		t.Fatal("no reference schedule")
	}
}

func TestSolveDAWO(t *testing.T) {
	resp, err := Solve(context.Background(), motivatingRequest(t, MethodDAWO, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Method != MethodDAWO {
		t.Fatalf("method = %q", resp.Method)
	}
	if err := VerifyClean(resp.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestSolveBudgetDegrades(t *testing.T) {
	// A budget too small for the exact ILPs must still return a clean
	// schedule, flagged canceled — the service's graceful-degradation
	// contract rides on this.
	resp, err := Solve(context.Background(), motivatingRequest(t, MethodPDW, Options{
		Budget: Budget{Total: 50 * time.Millisecond},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyClean(resp.Schedule); err != nil {
		t.Fatal(err)
	}
	if !resp.Stats.Canceled {
		t.Log("note: solve finished inside the budget; Canceled unset")
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	if _, err := Solve(context.Background(), Request{}); err == nil {
		t.Fatal("empty request must fail")
	}
	req := motivatingRequest(t, "teleport", Options{Heuristic: true})
	if _, err := Solve(context.Background(), req); !errors.Is(err, ErrInvalidAssay) {
		t.Fatalf("unknown method: err = %v, want ErrInvalidAssay", err)
	}
}

func TestSolveCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(ctx, motivatingRequest(t, MethodPDW, Options{})); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}
