package pathdriver_test

import (
	"context"
	"fmt"
	"log"

	"pathdriverwash/pkg/pathdriver"
)

// ExampleSynthesize shows the substrate step: from a protocol to a chip
// and a wash-free scheduling.
func ExampleSynthesize() {
	a := pathdriver.NewAssay("demo")
	a.MustAddOp(&pathdriver.Operation{
		ID: "mix", Kind: pathdriver.Mix, Duration: 2, Output: "product",
		Reagents: []pathdriver.FluidType{"sample", "reagent"},
	})
	syn, err := pathdriver.Synthesize(context.Background(), a, pathdriver.SynthConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("devices:", len(syn.Chip.Devices()))
	fmt.Println("valid:", syn.Schedule.Validate() == nil)
	// Output:
	// devices: 1
	// valid: true
}

// ExampleOptimizeWash runs PathDriver-Wash end to end on a protocol
// that reuses a mixer with a different fluid, forcing washes.
func ExampleOptimizeWash() {
	a := pathdriver.NewAssay("wash-demo")
	a.MustAddOp(&pathdriver.Operation{
		ID: "o1", Kind: pathdriver.Mix, Duration: 2, Output: "f1",
		Reagents: []pathdriver.FluidType{"r1", "r2"},
	})
	a.MustAddOp(&pathdriver.Operation{
		ID: "o2", Kind: pathdriver.Mix, Duration: 2, Output: "f2",
		Reagents: []pathdriver.FluidType{"r3"},
	})
	a.MustAddOp(&pathdriver.Operation{
		ID: "o3", Kind: pathdriver.Mix, Duration: 2, Output: "f3",
		Reagents: []pathdriver.FluidType{"r4"},
	})
	a.MustAddEdge("o1", "o2")
	a.MustAddEdge("o2", "o3")
	syn, err := pathdriver.Synthesize(context.Background(), a, pathdriver.SynthConfig{
		Devices: []pathdriver.DeviceSpec{{Kind: "mixer", Count: 2}},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := pathdriver.OptimizeWash(context.Background(), syn.Schedule, pathdriver.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("clean:", pathdriver.VerifyClean(res.Schedule) == nil)
	fmt.Println("washes inserted:", len(res.Washes) > 0)
	// Output:
	// clean: true
	// washes inserted: true
}

// ExampleVerifyClean demonstrates the contamination oracle on a
// wash-free schedule that genuinely needs washing.
func ExampleVerifyClean() {
	a := pathdriver.NewAssay("dirty")
	a.MustAddOp(&pathdriver.Operation{
		ID: "o1", Kind: pathdriver.Mix, Duration: 2, Output: "f1",
		Reagents: []pathdriver.FluidType{"r1", "r2"},
	})
	a.MustAddOp(&pathdriver.Operation{
		ID: "o2", Kind: pathdriver.Mix, Duration: 2, Output: "f2",
		Reagents: []pathdriver.FluidType{"r3"},
	})
	a.MustAddOp(&pathdriver.Operation{
		ID: "o3", Kind: pathdriver.Mix, Duration: 2, Output: "f3",
		Reagents: []pathdriver.FluidType{"r4"},
	})
	a.MustAddEdge("o1", "o2")
	a.MustAddEdge("o2", "o3")
	syn, err := pathdriver.Synthesize(context.Background(), a, pathdriver.SynthConfig{
		Devices: []pathdriver.DeviceSpec{{Kind: "mixer", Count: 2}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("wash-free schedule clean:", pathdriver.VerifyClean(syn.Schedule) == nil)
	// Output:
	// wash-free schedule clean: false
}

// ExampleBenchmarks lists the paper's workloads.
func ExampleBenchmarks() {
	for _, b := range pathdriver.Benchmarks()[:3] {
		fmt.Println(b.Name)
	}
	// Output:
	// PCR
	// IVD
	// ProteinSplit
}
