package pathdriver

import (
	"bytes"
	"context"
	"testing"
	"time"

	"pathdriverwash/internal/scheduleio"
)

// The deprecated wrappers must stay thin: same signatures, same results
// as the canonical context-first path. These are compile-time pins —
// changing a wrapper's signature breaks the build, which is the point.
var (
	_ func(context.Context, *Assay, SynthConfig) (*SynthResult, error)   = SynthesizeContext
	_ func(context.Context, *Assay, *Chip) (*SynthResult, error)         = SynthesizeOnChipContext
	_ func(context.Context, *Schedule, PDWOptions) (*PDWResult, error)   = OptimizeWashContext
	_ func(context.Context, *Schedule, DAWOOptions) (*DAWOResult, error) = BaselineContext
	_ func(context.Context, *Schedule, time.Duration) (*Schedule, error) = CompressBaseContext
	_ func(context.Context, *Assay, SynthConfig) (*SynthResult, error)   = Synthesize
	_ func(context.Context, *Schedule, Options) (*PDWResult, error)      = OptimizeWash
	_ func(context.Context, *Schedule, Options) (*DAWOResult, error)     = Baseline
	_ func(context.Context, Request) (*Response, error)                  = Solve
)

// scheduleBytes encodes a schedule in its canonical JSON form, the
// byte-identity oracle for the equivalence checks below.
func scheduleBytes(t *testing.T, s *Schedule) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := scheduleio.Encode(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDeprecatedWrappersMatchCanonical proves the old names are
// behavior-identical to the redesigned API on the paper's motivating
// example: same synthesized schedule, same optimized schedule, same
// objective, byte for byte.
func TestDeprecatedWrappersMatchCanonical(t *testing.T) {
	ctx := context.Background()
	a, chip, err := MotivatingExample()
	if err != nil {
		t.Fatal(err)
	}

	canonSyn, err := SynthesizeOnChip(ctx, a, chip)
	if err != nil {
		t.Fatal(err)
	}
	oldSyn, err := SynthesizeOnChipContext(ctx, a, chip)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(scheduleBytes(t, canonSyn.Schedule), scheduleBytes(t, oldSyn.Schedule)) {
		t.Fatal("SynthesizeOnChipContext diverges from SynthesizeOnChip")
	}

	// Heuristic mode keeps the test fast; the lowering from the shared
	// Options to pdw.Options is what is under test, not the ILPs.
	canonRes, err := OptimizeWash(ctx, canonSyn.Schedule, Options{Heuristic: true})
	if err != nil {
		t.Fatal(err)
	}
	oldRes, err := OptimizeWashContext(ctx, oldSyn.Schedule, PDWOptions{
		HeuristicPaths: true, HeuristicWindows: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if canonRes.Objective != oldRes.Objective || len(canonRes.Washes) != len(oldRes.Washes) {
		t.Fatalf("PDW wrapper diverges: objective %v vs %v, washes %d vs %d",
			canonRes.Objective, oldRes.Objective, len(canonRes.Washes), len(oldRes.Washes))
	}
	if !bytes.Equal(scheduleBytes(t, canonRes.Schedule), scheduleBytes(t, oldRes.Schedule)) {
		t.Fatal("OptimizeWashContext schedule diverges from OptimizeWash")
	}

	canonBase, err := Baseline(ctx, canonSyn.Schedule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oldBase, err := BaselineContext(ctx, oldSyn.Schedule, DAWOOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(scheduleBytes(t, canonBase.Schedule), scheduleBytes(t, oldBase.Schedule)) {
		t.Fatal("BaselineContext schedule diverges from Baseline")
	}

	canonRef, err := CompressBase(ctx, canonSyn.Schedule, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	oldRef, err := CompressBaseContext(ctx, oldSyn.Schedule, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(scheduleBytes(t, canonRef), scheduleBytes(t, oldRef)) {
		t.Fatal("CompressBaseContext schedule diverges from CompressBase")
	}
}

// TestOptionsLowering pins the field mapping from the shared Options to
// the per-optimizer structs.
func TestOptionsLowering(t *testing.T) {
	o := Options{
		Budget:      Budget{Total: time.Second, PerPath: 2 * time.Second, Window: 3 * time.Second},
		Weights:     Weights{Alpha: 0.1, Beta: 0.2, Gamma: 0.7},
		MergeRadius: 5, MaxRounds: 7, Heuristic: true,
		DisableNecessity: true, DisableMerge: true, DisableIntegration: true,
	}
	p := o.pdwOptions()
	if p.Alpha != 0.1 || p.Beta != 0.2 || p.Gamma != 0.7 {
		t.Fatalf("weights not lowered: %+v", p)
	}
	if p.Budget != o.Budget || p.MergeRadius != 5 || p.MaxRounds != 7 {
		t.Fatalf("budget/knobs not lowered: %+v", p)
	}
	if !p.HeuristicPaths || !p.HeuristicWindows {
		t.Fatal("Heuristic must select both heuristic paths and windows")
	}
	if !p.DisableNecessity || !p.DisableMerge || !p.DisableIntegration {
		t.Fatal("ablation switches not lowered")
	}
	d := o.dawoOptions()
	if d.Budget != o.Budget || d.MaxRounds != 7 {
		t.Fatalf("DAWO lowering wrong: %+v", d)
	}
}
