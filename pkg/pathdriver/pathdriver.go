// Package pathdriver is the public API of the PathDriver-Wash library:
// wash optimization for continuous-flow lab-on-a-chip biochips
// (Huang et al., DATE 2024).
//
// The API is context-first: every entry point takes a context.Context,
// and cancellation or Budget expiry degrades gracefully to the best
// feasible incumbent instead of erroring. A typical flow:
//
//	ctx := context.Background()
//	a := pathdriver.NewAssay("my-assay")
//	a.MustAddOp(&pathdriver.Operation{ID: "o1", Kind: pathdriver.Mix,
//	        Duration: 2, Output: "f1", Reagents: []pathdriver.FluidType{"r1", "r2"}})
//	...
//	syn, _ := pathdriver.Synthesize(ctx, a, pathdriver.SynthConfig{})
//	res, _ := pathdriver.OptimizeWash(ctx, syn.Schedule, pathdriver.Options{})
//	fmt.Println(res.Schedule.Gantt())
//
// Or, as one canonical call — the shape the pdwd solve service speaks:
//
//	doc := pathdriver.NewAssayDocument(a, pathdriver.SynthConfig{})
//	resp, _ := pathdriver.Solve(ctx, pathdriver.Request{Assay: doc,
//	        Options: pathdriver.Options{Budget: pathdriver.Budget{Total: 2 * time.Second}}})
//
// Synthesize stands in for the PathDriver+ tool (chip architecture and
// wash-free scheduling); OptimizeWash is the paper's contribution;
// Baseline is the DAWO comparator used in the evaluation. The
// pre-redesign names (SynthesizeContext, OptimizeWashContext, ...) live
// on as deprecated wrappers in deprecated.go.
package pathdriver

import (
	"context"
	"time"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/contam"
	"pathdriverwash/internal/control"
	"pathdriverwash/internal/dawo"
	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/pdw"
	"pathdriverwash/internal/schedule"
	"pathdriverwash/internal/solve"
	"pathdriverwash/internal/synth"
)

// Budgets, cancellation, and telemetry re-exports.
type (
	// Budget bounds a solve: Total is the end-to-end deadline applied as
	// a context deadline; PerPath and Window cap the wash-path ILPs and
	// the time-window MILP. It replaces the scattered per-phase
	// PathTimeLimit / WindowTimeLimit / TimeLimit options, which remain
	// as deprecated aliases.
	Budget = solve.Budget
	// SolveStats is the structured telemetry attached to PDWResult and
	// DAWOResult: per-phase wall times, branch-and-bound node and pruning
	// counts, simplex iterations, the incumbent trajectory, wash-path ILP
	// sizes, and Type 1/2/3 skip counts.
	SolveStats = solve.Stats
	// MILPStat describes one MILP solved during optimization.
	MILPStat = solve.MILPStat
)

// Sentinel errors, matchable with errors.Is through every layer's
// wrapping.
var (
	// ErrInfeasible marks a model with no feasible point (an impossible
	// wash-path cover, an infeasible window MILP, an unsatisfiable device
	// library).
	ErrInfeasible = solve.ErrInfeasible
	// ErrBudgetExceeded marks a solve aborted by a Budget, TimeLimit, or
	// context deadline before reaching a usable answer. Optimizers that
	// hold a feasible incumbent degrade to it instead of returning this.
	ErrBudgetExceeded = solve.ErrBudgetExceeded
	// ErrInvalidAssay marks a protocol that fails validation.
	ErrInvalidAssay = solve.ErrInvalidAssay
)

// Assay modelling re-exports.
type (
	// Assay is a bioassay protocol: the sequencing graph G(O,E).
	Assay = assay.Assay
	// Operation is one biochemical operation o_i.
	Operation = assay.Operation
	// FluidType identifies a fluid sample/reagent class.
	FluidType = assay.FluidType
	// OpKind is the biochemical operation class.
	OpKind = assay.OpKind
)

// Operation kinds.
const (
	Mix    = assay.Mix
	Heat   = assay.Heat
	Detect = assay.Detect
	Filter = assay.Filter
	Dilute = assay.Dilute
	Store  = assay.Store
)

// Waste is the distinguished discarded-product fluid type.
const Waste = assay.Waste

// Chip modelling re-exports.
type (
	// Chip is the virtual-grid biochip architecture.
	Chip = grid.Chip
	// Device is a placed on-chip device.
	Device = grid.Device
	// Port is a flow (injection) or waste boundary port.
	Port = grid.Port
	// Path is a flow path over grid cells.
	Path = grid.Path
	// DeviceKind is the functional device type.
	DeviceKind = grid.DeviceKind
)

// Port kinds.
const (
	FlowPort  = grid.FlowPort
	WastePort = grid.WastePort
)

// Geometry re-exports for building custom chips.
type (
	// Point is a grid cell coordinate.
	Point = geom.Point
	// Rect is a rectangle of grid cells (Min inclusive, Max exclusive).
	Rect = geom.Rect
)

// Pt constructs a grid point.
func Pt(x, y int) Point { return geom.Pt(x, y) }

// Rc constructs a cell rectangle from (x0,y0) to (x1,y1) exclusive.
func Rc(x0, y0, x1, y1 int) Rect { return geom.Rc(x0, y0, x1, y1) }

// Scheduling re-exports.
type (
	// Schedule is an assay execution procedure.
	Schedule = schedule.Schedule
	// Task is one schedule entry (operation, transport, removal,
	// disposal, or wash).
	Task = schedule.Task
	// Metrics aggregates the paper's evaluation quantities.
	Metrics = schedule.Metrics
)

// Synthesis re-exports.
type (
	// SynthConfig tunes the PathDriver-like synthesis substrate.
	SynthConfig = synth.Config
	// DeviceSpec requests devices in the synthesis library.
	DeviceSpec = synth.DeviceSpec
	// SynthResult is a chip plus a wash-free scheduling.
	SynthResult = synth.Result
)

// Optimizer re-exports.
type (
	// PDWResult is PathDriver-Wash's output.
	PDWResult = pdw.Result
	// DAWOResult is the baseline's output.
	DAWOResult = dawo.Result
	// Benchmark is one Table II workload.
	Benchmark = benchmarks.Benchmark
)

// NewAssay creates an empty assay protocol.
func NewAssay(name string) *Assay { return assay.New(name) }

// NewChip creates an empty custom chip of the given grid size.
func NewChip(name string, w, h int) *Chip { return grid.NewChip(name, w, h) }

// Synthesize builds a chip architecture and a wash-free scheduling for
// the assay (the inputs the wash optimizers consume). A context that is
// already done aborts with ErrBudgetExceeded; synthesis otherwise runs
// to completion (it is fast and has no usable partial result).
func Synthesize(ctx context.Context, a *Assay, cfg SynthConfig) (*SynthResult, error) {
	return synth.SynthesizeContext(ctx, a, cfg)
}

// SynthesizeOnChip schedules the assay on a caller-provided chip, with
// the same context contract as Synthesize.
func SynthesizeOnChip(ctx context.Context, a *Assay, c *Chip) (*SynthResult, error) {
	return synth.SynthesizeOnChipContext(ctx, a, c)
}

// OptimizeWash runs PathDriver-Wash on a wash-free schedule.
// Cancellation (or expiry of opts.Budget.Total) degrades gracefully:
// remaining exact searches fall back to their heuristic incumbents and
// the result is still a valid contamination-free schedule, with
// Stats.Canceled set — never an error.
func OptimizeWash(ctx context.Context, base *Schedule, opts Options) (*PDWResult, error) {
	return pdw.OptimizeContext(ctx, base, opts.pdwOptions())
}

// Baseline runs the DAWO comparison baseline on a wash-free schedule,
// with the same graceful degradation as OptimizeWash.
func Baseline(ctx context.Context, base *Schedule, opts Options) (*DAWOResult, error) {
	return dawo.OptimizeContext(ctx, base, opts.dawoOptions())
}

// CompressBase re-times a wash-free schedule with the time-window
// optimizer, giving the fair reference for delay measurements; a
// canceled context falls back to the greedy re-timing rather than
// erroring.
func CompressBase(ctx context.Context, base *Schedule, limit time.Duration) (*Schedule, error) {
	return pdw.CompressBaseContext(ctx, base, limit)
}

// VerifyClean checks that a schedule executes without
// cross-contamination: every residue is washed before a sensitive use.
func VerifyClean(s *Schedule) error { return contam.Verify(s) }

// Benchmarks returns the paper's eight Table II workloads.
func Benchmarks() []*Benchmark { return benchmarks.All() }

// BenchmarkByName looks up a Table II workload.
func BenchmarkByName(name string) (*Benchmark, error) { return benchmarks.ByName(name) }

// MotivatingExample returns the paper's Figs. 1(c)/2 running example:
// the seven-operation assay and the hand-built chip it executes on.
func MotivatingExample() (*Assay, *Chip, error) { return benchmarks.Motivating() }

// Control-layer re-exports (the microvalve model of Fig. 1(a)/(b)).
type (
	// ControlLayer is a chip's synthesized microvalve set.
	ControlLayer = control.Layer
	// ControlPlan is a schedule's valve actuation plan with control-pin
	// sharing and switching counts.
	ControlPlan = control.Plan
)

// SynthesizeControl places microvalves on the chip's junction arms and
// port stubs.
func SynthesizeControl(c *Chip) *ControlLayer { return control.Synthesize(c) }

// PlanControl derives the valve actuation plan for a schedule,
// verifying valve-state consistency and sharing control pins.
func PlanControl(l *ControlLayer, s *Schedule) (*ControlPlan, error) {
	return control.BuildPlan(l, s)
}

// MergeAssays composes several assays into one multiplexed protocol
// running concurrently on a single chip (the shape of the Kinase act-2
// benchmark). Operation IDs are prefixed with the part names.
func MergeAssays(name string, parts ...*Assay) (*Assay, error) {
	return assay.Merge(name, parts...)
}
