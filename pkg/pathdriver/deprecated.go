package pathdriver

import (
	"context"
	"time"

	"pathdriverwash/internal/dawo"
	"pathdriverwash/internal/pdw"
)

// Pre-redesign API surface. The package used to expose X/XContext
// pairs and per-optimizer option structs; the canonical API is now
// context-first with one shared Options shape (see api.go). Every old
// name below is a thin delegating wrapper with byte-identical behavior
// — compat_test.go pins that — so existing callers keep compiling, but
// new code should use the canonical forms.

// PDWOptions tunes PathDriver-Wash.
//
// Deprecated: use the shared Options with OptimizeWash, which covers
// the same knobs (weights, budget, heuristics, ablation switches).
type PDWOptions = pdw.Options

// DAWOOptions tunes the baseline.
//
// Deprecated: use the shared Options with Baseline.
type DAWOOptions = dawo.Options

// SynthesizeContext is the old name of Synthesize.
//
// Deprecated: use Synthesize, which is context-first.
func SynthesizeContext(ctx context.Context, a *Assay, cfg SynthConfig) (*SynthResult, error) {
	return Synthesize(ctx, a, cfg)
}

// SynthesizeOnChipContext is the old name of SynthesizeOnChip.
//
// Deprecated: use SynthesizeOnChip, which is context-first.
func SynthesizeOnChipContext(ctx context.Context, a *Assay, c *Chip) (*SynthResult, error) {
	return SynthesizeOnChip(ctx, a, c)
}

// OptimizeWashContext runs PDW with the per-optimizer PDWOptions.
//
// Deprecated: use OptimizeWash with the shared Options.
func OptimizeWashContext(ctx context.Context, base *Schedule, opts PDWOptions) (*PDWResult, error) {
	return pdw.OptimizeContext(ctx, base, opts)
}

// BaselineContext runs DAWO with the per-optimizer DAWOOptions.
//
// Deprecated: use Baseline with the shared Options.
func BaselineContext(ctx context.Context, base *Schedule, opts DAWOOptions) (*DAWOResult, error) {
	return dawo.OptimizeContext(ctx, base, opts)
}

// CompressBaseContext is the old name of CompressBase.
//
// Deprecated: use CompressBase, which is context-first.
func CompressBaseContext(ctx context.Context, base *Schedule, limit time.Duration) (*Schedule, error) {
	return CompressBase(ctx, base, limit)
}
