package pathdriver

import (
	"context"
	"fmt"
	"time"

	"pathdriverwash/internal/assayio"
	"pathdriverwash/internal/dawo"
	"pathdriverwash/internal/pdw"
)

// This file is the redesigned, context-first core of the public API:
// one canonical Options shape shared by every optimizer entry point
// (and embedded verbatim in the pdwd wire schema), one canonical
// Request/Response pair, and one Solve function that runs the whole
// pipeline — synthesis, reference compression, wash optimization,
// metrics — under a single context and budget.

// Weights are the objective weights of Eq. 26: Alpha scales the wash
// count N_wash, Beta the total wash path length L_wash, Gamma the assay
// completion time T_assay. The zero value selects the paper's defaults
// (0.3, 0.3, 0.4).
type Weights struct {
	Alpha float64 `json:"alpha,omitempty"`
	Beta  float64 `json:"beta,omitempty"`
	Gamma float64 `json:"gamma,omitempty"`
}

// Options is the canonical knob set of the solve pipeline, shared by
// OptimizeWash, Baseline, and Solve, and reused verbatim as the
// "options" object of the pdwd wire schema (DESIGN.md "Wire schema
// v1"). It replaces the three divergent option structs of the old API
// (SynthConfig stays — it configures the substrate, not the solve;
// PDWOptions and DAWOOptions remain as deprecated aliases). The zero
// value enables every technique with the paper's parameters and no
// deadline.
type Options struct {
	// Budget bounds the solve end to end: Total is enforced as a
	// context deadline over the whole pipeline, PerPath and Window cap
	// the inner ILPs. On the wire, durations are "2s"-style strings or
	// integer nanoseconds.
	Budget Budget `json:"budget"`
	// Weights weight Eq. 26.
	Weights Weights `json:"weights"`
	// MergeRadius is the Manhattan distance under which wash groups
	// merge into one path (0: default 4).
	MergeRadius int `json:"merge_radius,omitempty"`
	// MaxRounds caps wash-insertion fixpoint rounds (0: default 60).
	MaxRounds int `json:"max_rounds,omitempty"`
	// Heuristic selects BFS wash paths and greedy windows instead of
	// the exact ILPs — the cheap mode the service degrades to under
	// load.
	Heuristic bool `json:"heuristic,omitempty"`
	// DisableNecessity, DisableMerge, and DisableIntegration switch off
	// individual PDW techniques (the ablations of DESIGN.md).
	DisableNecessity   bool `json:"disable_necessity,omitempty"`
	DisableMerge       bool `json:"disable_merge,omitempty"`
	DisableIntegration bool `json:"disable_integration,omitempty"`
}

// pdwOptions lowers the canonical shape onto the PDW optimizer.
func (o Options) pdwOptions() pdw.Options {
	return pdw.Options{
		Alpha: o.Weights.Alpha, Beta: o.Weights.Beta, Gamma: o.Weights.Gamma,
		Budget:      o.Budget,
		MergeRadius: o.MergeRadius, MaxRounds: o.MaxRounds,
		HeuristicPaths: o.Heuristic, HeuristicWindows: o.Heuristic,
		DisableNecessity:   o.DisableNecessity,
		DisableMerge:       o.DisableMerge,
		DisableIntegration: o.DisableIntegration,
	}
}

// dawoOptions lowers the canonical shape onto the DAWO baseline (which
// has no ILPs, weights, or merge radius).
func (o Options) dawoOptions() dawo.Options {
	return dawo.Options{Budget: o.Budget, MaxRounds: o.MaxRounds}
}

// Method selects the optimizer a Request runs.
type Method string

const (
	// MethodPDW is PathDriver-Wash, the paper's contribution.
	MethodPDW Method = "pdw"
	// MethodDAWO is the delay-aware baseline of Sec. IV.
	MethodDAWO Method = "dawo"
)

// AssayDocument is the self-contained JSON description of a solve
// input: the assay's sequencing graph plus the synthesis configuration
// (device library, ports, chip physical parameters). Build one from an
// in-memory Assay with NewAssayDocument, or decode it straight from
// JSON — it is the "assay" object of the pdwd wire schema.
type AssayDocument = assayio.Document

// NewAssayDocument packages an assay and its synthesis configuration
// into the document shape Requests carry.
func NewAssayDocument(a *Assay, cfg SynthConfig) AssayDocument {
	return assayio.ToDocument(a, cfg)
}

// Request is the canonical description of one solve: what to run
// (assay + chip-synthesis config), with which optimizer, under which
// options and budget. It is pure data — JSON-serializable, hashable,
// and identical between the library API and the pdwd wire schema.
type Request struct {
	// Assay is the protocol and synthesis configuration.
	Assay AssayDocument `json:"assay"`
	// Method selects the optimizer ("" means MethodPDW).
	Method Method `json:"method,omitempty"`
	// Options tunes the solve.
	Options Options `json:"options"`
}

// Response is the result of one solve.
type Response struct {
	// Method is the optimizer that ran.
	Method Method
	// Schedule is the optimized, contamination-free execution
	// procedure.
	Schedule *Schedule
	// Reference is the compressed wash-free schedule the delay metrics
	// are measured against.
	Reference *Schedule
	// Washes is the number of wash operations inserted.
	Washes int
	// Objective is Eq. 26 on the result (PDW only).
	Objective float64
	// WindowsOptimal reports a proven-optimal time-window MILP (PDW
	// only; false for heuristic windows or best-effort incumbents).
	WindowsOptimal bool
	// Rounds counts wash-insertion fixpoint rounds.
	Rounds int
	// Metrics are the paper's evaluation quantities versus Reference.
	Metrics Metrics
	// Stats is the structured solve telemetry; Stats.Canceled reports a
	// budget-expired run that degraded to heuristic incumbents.
	Stats *SolveStats
}

// compressLimit bounds the wash-free reference compression inside
// Solve, matching the harness's default.
const compressLimit = 5 * time.Second

// Solve runs the whole pipeline for one Request: synthesis, reference
// compression, wash optimization, and metrics, under ctx and the
// request's budget. Budget expiry or ctx cancellation degrades
// gracefully — the response still carries a valid contamination-free
// schedule with Stats.Canceled set — unless cancellation lands before
// synthesis produced a usable base, in which case the error wraps
// ErrBudgetExceeded. Invalid documents wrap ErrInvalidAssay.
func Solve(ctx context.Context, req Request) (*Response, error) {
	ctx, cancel := req.Options.Budget.Context(ctx)
	defer cancel()
	method := req.Method
	if method == "" {
		method = MethodPDW
	}
	a, cfg, err := assayio.FromDocument(req.Assay)
	if err != nil {
		return nil, err
	}
	syn, err := Synthesize(ctx, a, cfg)
	if err != nil {
		return nil, err
	}
	ref, err := CompressBase(ctx, syn.Schedule, compressLimit)
	if err != nil {
		return nil, err
	}
	resp := &Response{Method: method, Reference: ref}
	switch method {
	case MethodPDW:
		res, err := OptimizeWash(ctx, syn.Schedule, req.Options)
		if err != nil {
			return nil, err
		}
		resp.Schedule = res.Schedule
		resp.Washes = len(res.Washes)
		resp.Objective = res.Objective
		resp.WindowsOptimal = res.WindowsOptimal
		resp.Rounds = res.Rounds
		resp.Stats = res.Stats
	case MethodDAWO:
		res, err := Baseline(ctx, syn.Schedule, req.Options)
		if err != nil {
			return nil, err
		}
		resp.Schedule = res.Schedule
		resp.Washes = len(res.Washes)
		resp.Rounds = res.Rounds
		resp.Stats = res.Stats
	default:
		return nil, fmt.Errorf("pathdriver: unknown method %q (want %q or %q): %w",
			method, MethodPDW, MethodDAWO, ErrInvalidAssay)
	}
	resp.Metrics = resp.Schedule.ComputeMetrics(ref)
	return resp, nil
}
