package pathdriver

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestContextAPIEndToEnd(t *testing.T) {
	ctx := context.Background()
	a := buildAssay(t)
	syn, err := SynthesizeContext(ctx, a, SynthConfig{
		Devices: []DeviceSpec{{Kind: "mixer", Count: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := OptimizeWashContext(ctx, syn.Schedule, PDWOptions{
		Budget: Budget{Total: 10 * time.Second, PerPath: time.Second, Window: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyClean(res.Schedule); err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || len(res.Stats.Phases) == 0 {
		t.Fatal("no solve stats on PDWResult")
	}
	base, err := BaselineContext(ctx, syn.Schedule, DAWOOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyClean(base.Schedule); err != nil {
		t.Fatal(err)
	}
	ref, err := CompressBaseContext(ctx, syn.Schedule, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Makespan() > syn.Schedule.Makespan() {
		t.Fatal("compressed base slower than input")
	}
}

func TestCanceledContextDegradesNotErrors(t *testing.T) {
	a := buildAssay(t)
	syn, err := Synthesize(context.Background(), a, SynthConfig{
		Devices: []DeviceSpec{{Kind: "mixer", Count: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := OptimizeWashContext(ctx, syn.Schedule, PDWOptions{})
	if err != nil {
		t.Fatalf("canceled optimize must degrade, not error: %v", err)
	}
	if err := VerifyClean(res.Schedule); err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Canceled {
		t.Error("Stats.Canceled not set")
	}
	// Synthesis, by contrast, aborts at entry under a done context.
	if _, err := SynthesizeContext(ctx, a, SynthConfig{}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestSentinelReExports(t *testing.T) {
	// An assay needing a mixer against a heater-only library.
	_, err := Synthesize(context.Background(), buildAssay(t), SynthConfig{
		Devices: []DeviceSpec{{Kind: "heater", Count: 1}},
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if _, err := Synthesize(context.Background(), NewAssay("empty"), SynthConfig{}); !errors.Is(err, ErrInvalidAssay) {
		t.Fatalf("err = %v, want ErrInvalidAssay", err)
	}
}
