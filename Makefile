.PHONY: build vet test test-full race check bench

build:
	go build ./...

vet:
	go vet ./...

# Fast suite: skips the full Table II sweeps (-short).
test:
	go test -short ./...

# Full suite, including every benchmark sweep (many minutes).
test-full:
	go test ./...

# Race-detector pass over the concurrency-bearing packages.
race:
	go test -race -short ./internal/harness ./internal/milp

# The verification gate: build + vet + fast tests + race pass.
check:
	./scripts/check.sh

# Paper evaluation artifacts (Table II, Fig. 4, Fig. 5).
bench:
	go run ./cmd/pdwbench
