.PHONY: build vet test test-full race overrun check pdwd soak bench bench-smoke bench-diff corpus-oracle fuzz profiles-smoke

build:
	go build ./...

vet:
	go vet ./...

# Fast suite: skips the full Table II sweeps (-short).
test:
	go test -short ./...

# Full suite, including every benchmark sweep (many minutes).
test-full:
	go test ./...

# Race-detector pass over the concurrency-bearing packages.
race:
	go test -race -short ./internal/harness ./internal/milp ./internal/obs ./internal/obs/prof ./internal/obs/reqlog ./internal/report ./internal/corpus ./internal/synth ./internal/service

# The solve server (see README "Running the service").
pdwd:
	go build -o pdwd ./cmd/pdwd

# Full service soak: >= 1000 concurrent mixed requests (cache-hot,
# cold, budget-starved, hung-up clients, shed and coalesced solves)
# through the real solver under the race detector, with every
# response's schedule re-verified contamination-free, the flight
# recorder asserted to retain every degraded/shed/hung-up outcome
# class with unique request ids, and the trace-context round trip
# proven end to end.
soak:
	go test -race -run 'TestServiceSoak|TestSoakShedVerified|TestRequestObservabilityEndToEnd' -v -count=1 ./internal/service

# Bounded-overrun regression: on reagent-dense instances whose solves
# once busted a 2 s deadline by 30+ s, every solver must return within
# the checkpoint-granularity bound (DESIGN.md "Cancellation granularity
# contract"). Runs under -race; the bounds scale by raceFactor.
overrun:
	go test -race -run TestDeadlineOverrunBounded -v ./internal/corpus

# The verification gate: build + gofmt + vet + fast tests + race pass,
# then the live anomaly-profiling smoke against a real pdwd.
check:
	./scripts/check.sh
	./scripts/profiles_smoke.sh

# End-to-end smoke for anomaly-triggered profiling: start pdwd, force a
# budget-overrun solve, and follow the /debug/requests record's
# profile_id to a valid gzipped pprof CPU capture on /debug/profiles.
profiles-smoke:
	./scripts/profiles_smoke.sh

# Paper evaluation artifacts (Table II, Fig. 4, Fig. 5) plus the
# machine-readable sweep result. COUNT > 1 repeats each benchmark,
# recording the per-iteration wall-time samples the regression radar's
# significance tests feed on.
COUNT ?= 1
bench:
	go run ./cmd/pdwbench -count $(COUNT) -json BENCH_pdw.json

# Fast end-to-end smoke: quick sweep with a JSON artifact, schema
# validation, a self-diff, and a second sweep gated against the first.
bench-smoke:
	./scripts/bench_smoke.sh

# Regression radar against the committed baseline: rerun the full sweep
# (COUNT samples per benchmark) and fail on significant regressions in
# solution quality or >WALL_THRESHOLD relative wall-time growth.
#   make bench-diff                    # single-shot, threshold mode
#   make bench-diff COUNT=5            # sampled, Mann-Whitney verdicts
BASE ?= BENCH_pdw.json
BENCH_DIFF_OUT ?= /tmp/pdw_bench_new.json
WALL_THRESHOLD ?= 0.20
bench-diff:
	go run ./cmd/pdwbench -count $(COUNT) -json $(BENCH_DIFF_OUT) \
		-baseline $(BASE) -wall-threshold $(WALL_THRESHOLD)

# Differential oracle over a seeded generated corpus: solve every
# instance with PDW, DAWO, and per-wash exact ILPs, and fail on any
# cross-solver invariant violation (see internal/corpus/oracle.go).
CORPUS_N ?= 24
CORPUS_SEED ?= 1
corpus-oracle:
	go run ./cmd/pdwbench -corpus $(CORPUS_N) -corpus-seed $(CORPUS_SEED) -quick -oracle

# Short fuzz pass over the corpus generator pipeline (the committed
# seeds under internal/corpus/testdata/fuzz run in every `make test`).
FUZZTIME ?= 30s
fuzz:
	go test ./internal/corpus/ -run '^$$' -fuzz FuzzGenerate -fuzztime $(FUZZTIME)
	go test ./internal/report/ -run '^$$' -fuzz FuzzReadBenchJSON -fuzztime $(FUZZTIME)
