.PHONY: build vet test test-full race check bench bench-smoke

build:
	go build ./...

vet:
	go vet ./...

# Fast suite: skips the full Table II sweeps (-short).
test:
	go test -short ./...

# Full suite, including every benchmark sweep (many minutes).
test-full:
	go test ./...

# Race-detector pass over the concurrency-bearing packages.
race:
	go test -race -short ./internal/harness ./internal/milp ./internal/obs

# The verification gate: build + vet + fast tests + race pass.
check:
	./scripts/check.sh

# Paper evaluation artifacts (Table II, Fig. 4, Fig. 5) plus the
# machine-readable sweep result.
bench:
	go run ./cmd/pdwbench -json BENCH_pdw.json

# Fast end-to-end smoke: quick sweep with a JSON artifact, then
# re-validate the artifact against the bench-file schema.
bench-smoke:
	./scripts/bench_smoke.sh
