#!/bin/sh
# profiles_smoke.sh — end-to-end smoke for the anomaly-triggered
# profiling pipeline, available as `make profiles-smoke`. Starts a real
# pdwd on an ephemeral port, forces a budget-overrun solve (a paper
# benchmark under a 1 ms total budget degrades to heuristic incumbents
# with canceled=true), and then walks the whole evidence chain the
# observability layer promises: the overrun record appears on
# /debug/requests?outcome=overrun carrying a profile_id, the
# /debug/profiles listing shows the capture, and the capture's CPU
# bytes download as a gzipped pprof protobuf (the format `go tool
# pprof` loads directly). Also asserts /debug/solves answers a valid
# listing. Fails on any missing link.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d /tmp/pdw_profiles_smoke.XXXXXX)
pdwd_pid=""
cleanup() {
    [ -n "$pdwd_pid" ] && kill "$pdwd_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "==> build pdwd"
go build -o "$tmp/pdwd" ./cmd/pdwd

echo "==> start pdwd on an ephemeral port (fast profile capture)"
"$tmp/pdwd" -listen 127.0.0.1:0 -profile-cpu 250ms -profile-cooldown 1s \
    2>"$tmp/pdwd.log" &
pdwd_pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*"msg":"listening".*"addr":"\([^"]*\)".*/\1/p' "$tmp/pdwd.log" | head -n1)
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "profiles-smoke: pdwd never logged its bound address" >&2
    cat "$tmp/pdwd.log" >&2
    exit 1
fi
echo "    pdwd at $addr"

echo "==> /debug/solves answers a valid listing"
solves=$(curl -fsS "http://$addr/debug/solves")
case "$solves" in
*'"count"'*'"solves"'*) ;;
*)
    echo "profiles-smoke: /debug/solves malformed: $solves" >&2
    exit 1
    ;;
esac

echo "==> force a budget-overrun solve (PCR benchmark, 1 ms budget)"
go run ./cmd/pdw -bench PCR -export >"$tmp/assay.json"
printf '{"assay": %s, "options": {"budget": {"total": "1ms"}}}' \
    "$(cat "$tmp/assay.json")" >"$tmp/request.json"
curl -fsS "http://$addr/v1/solve" -d @"$tmp/request.json" -o "$tmp/response.json"
if ! grep -q '"canceled":[[:space:]]*true' "$tmp/response.json"; then
    echo "profiles-smoke: solve did not overrun its budget:" >&2
    head -c 400 "$tmp/response.json" >&2
    exit 1
fi

echo "==> overrun record on /debug/requests carries a profile_id"
profile_id=""
for _ in $(seq 1 50); do
    profile_id=$(curl -fsS "http://$addr/debug/requests?outcome=overrun" |
        sed -n 's/.*"profile_id": *"\([^"]*\)".*/\1/p' | head -n1)
    [ -n "$profile_id" ] && break
    sleep 0.1
done
if [ -z "$profile_id" ]; then
    echo "profiles-smoke: no overrun record with a profile_id" >&2
    curl -fsS "http://$addr/debug/requests?outcome=overrun" >&2 || true
    exit 1
fi
echo "    profile_id=$profile_id"

echo "==> /debug/profiles lists the capture"
curl -fsS "http://$addr/debug/profiles" | grep -q "\"$profile_id\"" || {
    echo "profiles-smoke: capture $profile_id missing from the ring listing" >&2
    exit 1
}

echo "==> capture serves a valid gzipped pprof CPU profile"
# The CPU window is 250 ms; poll until the capture completes (202 while
# pending).
ok=""
for _ in $(seq 1 100); do
    code=$(curl -sS -o "$tmp/cpu.pb.gz" -w '%{http_code}' \
        "http://$addr/debug/profiles/$profile_id?kind=cpu" 2>/dev/null || echo 000)
    if [ "$code" = "200" ]; then
        ok=1
        break
    fi
    sleep 0.1
done
if [ -z "$ok" ]; then
    echo "profiles-smoke: capture $profile_id never completed" >&2
    exit 1
fi
magic=$(od -An -tx1 -N2 "$tmp/cpu.pb.gz" | tr -d ' ')
if [ "$magic" != "1f8b" ]; then
    echo "profiles-smoke: CPU profile is not gzipped (magic $magic)" >&2
    exit 1
fi
gunzip -t "$tmp/cpu.pb.gz" || {
    echo "profiles-smoke: CPU profile gzip stream corrupt" >&2
    exit 1
}
for kind in goroutine heap; do
    curl -fsS -o "$tmp/$kind.pb.gz" "http://$addr/debug/profiles/$profile_id?kind=$kind"
    gunzip -t "$tmp/$kind.pb.gz" || {
        echo "profiles-smoke: $kind profile gzip stream corrupt" >&2
        exit 1
    }
done

echo "Profiles smoke passed."
