#!/bin/sh
# check.sh — the repository's verification gate, also available as
# `make check`. Runs the tier-1 build, formatting and static checks,
# the fast test suite, and the race-detector pass over the
# concurrency-bearing packages (the harness worker pool, the
# context-cancellable MILP search, the observability layer, the
# bench-diff report helpers read concurrently by tooling, the
# corpus generator whose sweeps are sharded across processes, the
# synthesis layer whose checkpointed scheduler aborts race deadline
# expiry from the context's timer goroutine, and the solve service's
# admission/cache/coalescing machinery plus its scaled-down soak).
#
# The full (non-short) suite, including the complete Table II sweeps,
# is `go test ./...` and takes many minutes on a small machine.
set -eu
cd "$(dirname "$0")/.."

echo "==> gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files are not gofmt-formatted:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -short ./..."
go test -short ./...

echo "==> go test -race -short ./internal/harness ./internal/milp ./internal/obs ./internal/obs/prof ./internal/obs/reqlog ./internal/report ./internal/corpus ./internal/synth ./internal/service"
go test -race -short ./internal/harness ./internal/milp ./internal/obs ./internal/obs/prof ./internal/obs/reqlog ./internal/report ./internal/corpus ./internal/synth ./internal/service

echo "All checks passed."
