#!/bin/sh
# check.sh — the repository's verification gate, also available as
# `make check`. Runs the tier-1 build, static vet, the fast test suite,
# and the race-detector pass over the two concurrency-bearing packages
# (the harness worker pool and the context-cancellable MILP search).
#
# The full (non-short) suite, including the complete Table II sweeps,
# is `go test ./...` and takes many minutes on a small machine.
set -eu
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -short ./..."
go test -short ./...

echo "==> go test -race -short ./internal/harness ./internal/milp ./internal/obs"
go test -race -short ./internal/harness ./internal/milp ./internal/obs

echo "All checks passed."
