#!/bin/sh
# bench_smoke.sh — fast end-to-end benchmark smoke, available as
# `make bench-smoke`. Runs the quick sweep with the machine-readable
# JSON artifact enabled, validates the artifact against the bench-file
# schema (internal/report.BenchFile.Validate) via `pdwbench -validate`,
# exercises the regression radar with a self-diff (comparing the
# artifact against itself must report zero changes), and finally runs a
# second quick sweep gated against the first as a baseline — making the
# smoke itself the perf gate. A final corpus step sweeps the same
# seeded generated corpus unsharded and as two merged shards and
# requires the artifacts to be quality-identical, exercising the whole
# -corpus/-shard/-merge/-compare surface end to end. The baseline step only fails wall time on
# order-of-magnitude growth (-wall-threshold 9 = 10x): quick-budget
# wall times are millisecond-scale and swing several-fold with machine
# load. The solution-quality metrics gate exactly where the quick
# solves complete and by the diff's budget-limited threshold rule where
# they are truncated. Fails if any benchmark fails, the JSON does not
# round-trip
# through the schema, the self-diff reports changes, or the baseline
# gate detects a regression.
set -eu
cd "$(dirname "$0")/.."

out="${BENCH_SMOKE_OUT:-/tmp/pdw_bench_smoke.json}"
out2="${BENCH_SMOKE_OUT2:-/tmp/pdw_bench_smoke2.json}"

echo "==> pdwbench -quick -json $out"
go run ./cmd/pdwbench -quick -json "$out" >/dev/null

echo "==> pdwbench -validate $out"
go run ./cmd/pdwbench -validate "$out"

echo "==> pdwbench -compare $out $out (self-diff must be clean)"
diff_out=$(go run ./cmd/pdwbench -compare "$out" "$out")
echo "$diff_out"
case "$diff_out" in
*"0 improved, 0 regressed,"*) ;;
*)
    echo "bench-smoke: self-diff reported changes" >&2
    exit 1
    ;;
esac

echo "==> pdwbench -quick -baseline $out -json $out2 (perf gate)"
go run ./cmd/pdwbench -quick -baseline "$out" -json "$out2" -wall-threshold 9 >/dev/null

# Flight-recorder cost check: the service hot path with the recorder
# off and on, so a recorder cost regression surfaces here before it
# surfaces in production latency (DESIGN.md "Request observability
# contract").
echo "==> go test -bench BenchmarkFlightRecorderOverhead ./internal/service"
go test -run '^$' -bench BenchmarkFlightRecorderOverhead -benchtime 1000x ./internal/service

# Live-progress cost check: the simplex pivot loop bare vs. with a
# progress view attached (DESIGN.md "Progress snapshot cost contract":
# within 2%; the publisher only runs at the existing 64-pivot flush
# cadence, so the two variants should be statistically
# indistinguishable).
echo "==> go test -bench BenchmarkProgressOverhead ./internal/lp"
go test -run '^$' -bench BenchmarkProgressOverhead -benchtime 1000x ./internal/lp

# Sharded-corpus smoke: the same seeded corpus swept unsharded and as
# two merged shards must produce quality-identical artifacts. Wall
# times differ run to run, so the equivalence diff is -quality.
corpus_full="${BENCH_SMOKE_CORPUS:-/tmp/pdw_corpus_smoke.json}"
corpus_s0="${BENCH_SMOKE_CORPUS_S0:-/tmp/pdw_corpus_smoke_s0.json}"
corpus_s1="${BENCH_SMOKE_CORPUS_S1:-/tmp/pdw_corpus_smoke_s1.json}"
corpus_merged="${BENCH_SMOKE_CORPUS_MERGED:-/tmp/pdw_corpus_smoke_merged.json}"

echo "==> pdwbench -corpus 6 -quick (unsharded corpus sweep)"
go run ./cmd/pdwbench -corpus 6 -quick -json "$corpus_full" >/dev/null

echo "==> pdwbench -corpus 6 -quick -shard 0/2 and 1/2 (sharded sweep)"
go run ./cmd/pdwbench -corpus 6 -quick -shard 0/2 -json "$corpus_s0" >/dev/null
go run ./cmd/pdwbench -corpus 6 -quick -shard 1/2 -json "$corpus_s1" >/dev/null

echo "==> pdwbench -merge $corpus_merged $corpus_s0 $corpus_s1"
go run ./cmd/pdwbench -merge "$corpus_merged" "$corpus_s0" "$corpus_s1"

echo "==> pdwbench -compare -quality $corpus_full $corpus_merged (shards must merge clean)"
corpus_diff=$(go run ./cmd/pdwbench -compare -quality "$corpus_full" "$corpus_merged")
echo "$corpus_diff"
case "$corpus_diff" in
*"0 improved, 0 regressed,"*) ;;
*)
    echo "bench-smoke: sharded corpus sweep diverged from unsharded" >&2
    exit 1
    ;;
esac

echo "Bench smoke passed."
