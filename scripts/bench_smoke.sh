#!/bin/sh
# bench_smoke.sh — fast end-to-end benchmark smoke, available as
# `make bench-smoke`. Runs the quick sweep with the machine-readable
# JSON artifact enabled, then validates the artifact against the
# bench-file schema (internal/report.BenchFile.Validate) via
# `pdwbench -validate`. Fails if any benchmark fails (pdwbench exits
# non-zero and lists failures on stderr) or if the generated JSON does
# not round-trip through the schema.
set -eu
cd "$(dirname "$0")/.."

out="${BENCH_SMOKE_OUT:-/tmp/pdw_bench_smoke.json}"

echo "==> pdwbench -quick -json $out"
go run ./cmd/pdwbench -quick -json "$out" >/dev/null

echo "==> pdwbench -validate $out"
go run ./cmd/pdwbench -validate "$out"

echo "Bench smoke passed."
