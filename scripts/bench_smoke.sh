#!/bin/sh
# bench_smoke.sh — fast end-to-end benchmark smoke, available as
# `make bench-smoke`. Runs the quick sweep with the machine-readable
# JSON artifact enabled, validates the artifact against the bench-file
# schema (internal/report.BenchFile.Validate) via `pdwbench -validate`,
# exercises the regression radar with a self-diff (comparing the
# artifact against itself must report zero changes), and finally runs a
# second quick sweep gated against the first as a baseline — making the
# smoke itself the perf gate. The baseline step only fails wall time on
# order-of-magnitude growth (-wall-threshold 9 = 10x): quick-budget
# wall times are millisecond-scale and swing several-fold with machine
# load. The solution-quality metrics gate exactly where the quick
# solves complete and by the diff's budget-limited threshold rule where
# they are truncated. Fails if any benchmark fails, the JSON does not
# round-trip
# through the schema, the self-diff reports changes, or the baseline
# gate detects a regression.
set -eu
cd "$(dirname "$0")/.."

out="${BENCH_SMOKE_OUT:-/tmp/pdw_bench_smoke.json}"
out2="${BENCH_SMOKE_OUT2:-/tmp/pdw_bench_smoke2.json}"

echo "==> pdwbench -quick -json $out"
go run ./cmd/pdwbench -quick -json "$out" >/dev/null

echo "==> pdwbench -validate $out"
go run ./cmd/pdwbench -validate "$out"

echo "==> pdwbench -compare $out $out (self-diff must be clean)"
diff_out=$(go run ./cmd/pdwbench -compare "$out" "$out")
echo "$diff_out"
case "$diff_out" in
*"0 improved, 0 regressed,"*) ;;
*)
    echo "bench-smoke: self-diff reported changes" >&2
    exit 1
    ;;
esac

echo "==> pdwbench -quick -baseline $out -json $out2 (perf gate)"
go run ./cmd/pdwbench -quick -baseline "$out" -json "$out2" -wall-threshold 9 >/dev/null

echo "Bench smoke passed."
